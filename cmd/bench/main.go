// Command bench measures the simulator's wall-clock performance on the
// workloads that dominate development time — the Fig. 9 measurement
// matrix (72 cells: three networks × six runtimes × four power systems),
// the intermittence-correctness fuzz campaign, and the fleet campaign
// engine's device throughput — and records them as JSON, seeding the
// repository's performance trajectory. Each perf PR appends its
// before/after to the tracked BENCH_PR<n>.json files.
//
// Usage:
//
//	bench                      # measure and write BENCH_PR10.json
//	bench -count 5 -out /tmp/b.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/intermittest"
	"repro/internal/mcu"
	"repro/internal/prof"
	"repro/internal/sonic"
)

// preBulkFig9NsPerOp is BenchmarkFig9 at the commit before the bulk-charge
// fast path (ad4056e), measured with -benchtime=1x on the reference
// machine: 1.079 s per 72-cell matrix. The "before" of that PR's ≥3× goal.
const preBulkFig9NsPerOp int64 = 1_079_000_000

// pr7FleetTapeDevPerSec is the tape fleet sweep's throughput recorded in
// BENCH_PR7.json on the reference machine (600 real-network devices, one
// worker, per-device trace analysis still attached). The fused-kernel
// PR's goal is >= 2x this absolute figure.
const pr7FleetTapeDevPerSec float64 = 264.8

// pr8FleetTapeDevPerSec is the fused tape fleet sweep's throughput
// recorded in BENCH_PR8.json on the reference machine (600 real-network
// devices, one worker, every device paying a word-at-a-time fresh deploy
// — both the bulk flash and pooled provisioning landed after it). Kept
// for the throughput trajectory next to the live fresh/pooled A/B.
const pr8FleetTapeDevPerSec float64 = 744.4

// pr9FleetTapeDevPerSec is the fused tape fleet sweep's throughput
// recorded in BENCH_PR9.json on the reference machine (600 real-network
// devices, one worker, pooled provisioning). The sparse row-walk PR's
// goal is >= 1.3x this absolute figure.
const pr9FleetTapeDevPerSec float64 = 762.0

// preForkCampaignNsPerOp is the full WAR-armed fuzz campaign at the commit
// before snapshot-and-fork checking (8a0846c), recorded in BENCH_PR3.json
// on the reference machine: every boundary re-simulated from scratch. The
// historical "before" of this PR's campaign speedup; the live before is
// also measured each run via ForceScratch at identical sweep coverage.
const preForkCampaignNsPerOp int64 = 1_162_645_049

type cellTime struct {
	Net     string `json:"net"`
	Runtime string `json:"runtime"`
	Power   string `json:"power"`
	NsPerOp int64  `json:"ns_per_op"`
}

type report struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`

	// Prepare times the quick-mode GENESIS preparation of all three
	// networks three ways: pinned serial, parallel (the new default), and
	// warm from the content-addressed report cache. WarmTrainEpochs proves
	// the warm runs performed zero training. The parallel speedup scales
	// with GOMAXPROCS; on a 1-CPU runner it is ~1x by construction.
	Prepare struct {
		GOMAXPROCS      int     `json:"gomaxprocs"`
		SerialNsPerOp   int64   `json:"serial_ns_per_op"`
		ParallelNsPerOp int64   `json:"parallel_ns_per_op"`
		WarmNsPerOp     int64   `json:"warm_ns_per_op"`
		ParallelSpeedup float64 `json:"parallel_speedup"`
		WarmSpeedup     float64 `json:"warm_speedup"`
		WarmTrainEpochs int64   `json:"warm_train_epochs"`
		Iterations      int     `json:"iterations"`
	} `json:"prepare"`

	Fig9 struct {
		BeforeNsPerOp int64      `json:"before_ns_per_op"`
		AfterNsPerOp  int64      `json:"after_ns_per_op"`
		Speedup       float64    `json:"speedup"`
		Iterations    int        `json:"iterations"`
		Cells         []cellTime `json:"cells"`
	} `json:"fig9"`

	Campaign struct {
		// BeforeNsPerOp re-measures the pre-fork path (ForceScratch) at the
		// same sweep coverage; PR3NsPerOp is the value recorded by the
		// previous perf PR on the reference machine.
		BeforeNsPerOp int64   `json:"before_ns_per_op"`
		AfterNsPerOp  int64   `json:"after_ns_per_op"`
		Speedup       float64 `json:"speedup"`
		PR3NsPerOp    int64   `json:"pr3_ns_per_op"`
		Iterations    int     `json:"iterations"`
	} `json:"intermittest_campaign"`

	// Fleet is the campaign engine's device throughput: one mixed-runtime,
	// mixed-power tiny-model fleet swept at 1, 4, and GOMAXPROCS workers.
	// Deterministic records that every worker count produced bit-identical
	// aggregates. ScalingAt4 (measured only when GOMAXPROCS >= 4) is the
	// fraction of linear speedup at 4 workers; on a 1-CPU runner extra
	// workers just take turns, so it is ~1/4 by construction and unscored.
	Fleet struct {
		GOMAXPROCS    int          `json:"gomaxprocs"`
		Devices       int          `json:"devices"`
		Iterations    int          `json:"iterations"`
		Workers       []fleetPoint `json:"workers"`
		ScalingAt4    float64      `json:"scaling_at_4,omitempty"`
		Deterministic bool         `json:"deterministic"`
	} `json:"fleet"`

	// Tape A/Bs the pre-decoded op-tape executors against the interpreted
	// walk on the two workloads that dominate wall-clock: the Fig. 9
	// measurement matrix and single-worker fleet throughput. Identical
	// records that every matrix cell and the fleet summary were bit-equal
	// between executors — the speedup only counts on identical results.
	// The fleet A/B sweeps the real evaluation networks (mnist, har, okg)
	// rather than the synthetic tiny model: the tiny fleet is dominated by
	// per-device fixed costs (construction, deployment, trace analysis)
	// that are identical in both executors, while the real networks carry
	// the MAC volume the pre-decoded tables actually accelerate.
	Tape struct {
		Fig9InterpNsPerOp    int64    `json:"fig9_interp_ns_per_op"`
		Fig9TapeNsPerOp      int64    `json:"fig9_tape_ns_per_op"`
		Fig9Speedup          float64  `json:"fig9_speedup"`
		FleetDevices         int      `json:"fleet_devices"`
		FleetNets            []string `json:"fleet_nets"`
		FleetInterpDevPerSec float64  `json:"fleet_interp_devices_per_sec"`
		FleetTapeDevPerSec   float64  `json:"fleet_tape_devices_per_sec"`
		FleetSpeedup         float64  `json:"fleet_speedup"`
		Identical            bool     `json:"identical"`
		Iterations           int      `json:"iterations"`
	} `json:"tape"`

	// Kernels A/Bs the fused bulk-loop kernels against the scalar
	// op-by-op path (Device.NoFuse) at fixed executor choice — both sides
	// run the tape executors, so the ratio isolates the fused fast path
	// alone. Same discipline as Tape: paired alternating min-of-K, and the
	// speedup only counts on bit-identical results (every Fig. 9 cell, and
	// the fleet summary byte-for-byte). FleetWorkers reports the fused
	// tape fleet's devices/sec at 1 and 4 workers.
	Kernels struct {
		Fig9ScalarNsPerOp    int64        `json:"fig9_scalar_ns_per_op"`
		Fig9FusedNsPerOp     int64        `json:"fig9_fused_ns_per_op"`
		Fig9Speedup          float64      `json:"fig9_speedup"`
		FleetDevices         int          `json:"fleet_devices"`
		FleetNets            []string     `json:"fleet_nets"`
		FleetScalarDevPerSec float64      `json:"fleet_scalar_devices_per_sec"`
		FleetFusedDevPerSec  float64      `json:"fleet_fused_devices_per_sec"`
		FleetSpeedup         float64      `json:"fleet_speedup"`
		FleetWorkers         []fleetPoint `json:"fleet_workers"`
		PR7FleetDevPerSec    float64      `json:"pr7_fleet_tape_devices_per_sec"`
		Identical            bool         `json:"identical"`
		Iterations           int          `json:"iterations"`
	} `json:"kernels"`

	// Provision A/Bs pooled COW provisioning against per-device fresh
	// deploys on the real networks, two ways. The fleet pair is the same
	// 600-device sweep with Spec.Fresh flipped at fixed executor choice
	// (fused tape on both sides): the end-to-end effect of device reuse,
	// bounded by how small a slice of a device's wall time provisioning
	// is once the bulk flash made fresh deploys cheap (Amdahl). The prov
	// pair isolates the provisioning path itself — a fresh mcu.New +
	// core.Deploy per device versus a pool-slot COW restore-in-place +
	// Reprovision — which is the subsystem this layer replaces and where
	// the >= 1.3x bar is asserted (measured around two orders of
	// magnitude). Identical records that the fleet sides' summaries were
	// byte-equal — pooling only counts on identical results. The page
	// counters are the pooled fleet's restore traffic: Skipped pages
	// belong to regions inference never wrote (weights, index tables),
	// the dirty-region tracking's whole point.
	Provision struct {
		FleetDevices        int      `json:"fleet_devices"`
		FleetNets           []string `json:"fleet_nets"`
		FreshDevPerSec      float64  `json:"fleet_fresh_devices_per_sec"`
		PooledDevPerSec     float64  `json:"fleet_pooled_devices_per_sec"`
		FleetSpeedup        float64  `json:"fleet_speedup"`
		ProvDevices         int      `json:"provision_devices"`
		ProvFreshDevPerSec  float64  `json:"provision_fresh_devices_per_sec"`
		ProvPooledDevPerSec float64  `json:"provision_pooled_devices_per_sec"`
		ProvSpeedup         float64  `json:"provision_speedup"`
		Restores            int64    `json:"restores"`
		PagesCopied         int64    `json:"pages_copied"`
		PagesClean          int64    `json:"pages_clean"`
		PagesSkipped        int64    `json:"pages_skipped"`
		PR8FleetDevPerSec   float64  `json:"pr8_fleet_tape_devices_per_sec"`
		Identical           bool     `json:"identical"`
		Iterations          int      `json:"iterations"`
	} `json:"provision"`

	// Sparse is the sparse row-walk + op-path PR's section. The fleet
	// figures restate the tape sweep's minimum against BENCH_PR9's
	// recorded throughput (the >= 1.3x bar is asserted in-binary, on
	// byte-identical summaries enforced by the paired harness). The layer
	// pair isolates the CSR row walk itself: a synthetic sparse-heavy
	// model — one large SparseDense layer holding nearly all the work —
	// run on SONIC interpreted (per-nonzero row walk, binary row search)
	// versus SONIC tape (compiled row-span trains through kern.CSRSpans),
	// with logits and RunResults bit-equal between the executors.
	Sparse struct {
		FleetDevices       int     `json:"fleet_devices"`
		FleetTapeDevPerSec float64 `json:"fleet_tape_devices_per_sec"`
		PR9FleetDevPerSec  float64 `json:"pr9_fleet_tape_devices_per_sec"`
		FleetGain          float64 `json:"fleet_gain_vs_pr9"`
		LayerRows          int     `json:"layer_rows"`
		LayerCols          int     `json:"layer_cols"`
		LayerNonzeros      int     `json:"layer_nonzeros"`
		LayerInterpNsPerOp int64   `json:"layer_interp_ns_per_op"`
		LayerTapeNsPerOp   int64   `json:"layer_tape_ns_per_op"`
		LayerSpeedup       float64 `json:"layer_speedup"`
		Identical          bool    `json:"identical"`
		Iterations         int     `json:"iterations"`
	} `json:"sparse"`
}

type fleetPoint struct {
	Workers       int     `json:"workers"`
	NsPerOp       int64   `json:"ns_per_op"`
	DevicesPerSec float64 `json:"devices_per_sec"`
}

var profiler = prof.RegisterFlags()

func main() {
	var (
		out   = flag.String("out", "BENCH_PR10.json", "output JSON path")
		count = flag.Int("count", 3, "timed iterations per workload")
		seed  = flag.Uint64("seed", 1, "model seed")
	)
	flag.Parse()
	if err := profiler.Start(); err != nil {
		fail(err)
	}
	defer profiler.Stop()

	var rep report
	rep.GoVersion = runtime.Version()
	rep.GOARCH = runtime.GOARCH

	// Preparation pipeline: quick-mode PrepareAll, serial vs parallel vs
	// warm-cache. The parallel run's last result doubles as the Fig. 9
	// model set (parallel ≡ serial, per TestGenesisParallelDeterministic).
	rep.Prepare.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Prepare.Iterations = *count

	fmt.Fprintf(os.Stderr, "bench: PrepareAll (serial) × %d...\n", *count)
	start := time.Now()
	for i := 0; i < *count; i++ {
		if _, err := harness.PrepareAll(harness.PrepareOptions{
			Seed: *seed, Quick: true, ForceSerial: true}); err != nil {
			fail(err)
		}
	}
	rep.Prepare.SerialNsPerOp = time.Since(start).Nanoseconds() / int64(*count)

	fmt.Fprintf(os.Stderr, "bench: PrepareAll (parallel) × %d...\n", *count)
	var prepped []*harness.Prepared
	start = time.Now()
	for i := 0; i < *count; i++ {
		var err error
		if prepped, err = harness.PrepareAll(harness.PrepareOptions{
			Seed: *seed, Quick: true}); err != nil {
			fail(err)
		}
	}
	rep.Prepare.ParallelNsPerOp = time.Since(start).Nanoseconds() / int64(*count)
	rep.Prepare.ParallelSpeedup = float64(rep.Prepare.SerialNsPerOp) / float64(rep.Prepare.ParallelNsPerOp)

	cacheDir, err := os.MkdirTemp("", "bench-report-cache-")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(cacheDir)
	warmPO := harness.PrepareOptions{Seed: *seed, Quick: true, CacheDir: cacheDir}
	if _, err := harness.PrepareAll(warmPO); err != nil { // populate the cache
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "bench: PrepareAll (warm cache) × %d...\n", *count)
	epochsBefore := dnn.EpochsRun()
	start = time.Now()
	for i := 0; i < *count; i++ {
		warm, err := harness.PrepareAll(warmPO)
		if err != nil {
			fail(err)
		}
		for _, p := range warm {
			if !p.CacheHit {
				fail(fmt.Errorf("warm run missed the report cache for %s", p.Net))
			}
		}
	}
	rep.Prepare.WarmNsPerOp = time.Since(start).Nanoseconds() / int64(*count)
	rep.Prepare.WarmSpeedup = float64(rep.Prepare.SerialNsPerOp) / float64(rep.Prepare.WarmNsPerOp)
	rep.Prepare.WarmTrainEpochs = dnn.EpochsRun() - epochsBefore
	if rep.Prepare.WarmTrainEpochs != 0 {
		fail(fmt.Errorf("warm-cache runs performed %d training epochs, want 0",
			rep.Prepare.WarmTrainEpochs))
	}
	// Fig. 9 matrix: GENESIS preparation is untimed (as in BenchmarkFig9);
	// the timed region is the full 72-cell measurement.
	fmt.Fprintf(os.Stderr, "bench: Fig. 9 matrix × %d...\n", *count)
	start = time.Now()
	for i := 0; i < *count; i++ {
		if _, err := harness.RunAll(prepped); err != nil {
			fail(err)
		}
	}
	rep.Fig9.BeforeNsPerOp = preBulkFig9NsPerOp
	rep.Fig9.AfterNsPerOp = time.Since(start).Nanoseconds() / int64(*count)
	rep.Fig9.Speedup = float64(preBulkFig9NsPerOp) / float64(rep.Fig9.AfterNsPerOp)
	rep.Fig9.Iterations = *count

	// Per-cell breakdown, one measurement each: where the time goes.
	for _, p := range prepped {
		input := p.Model.QuantizeInput(p.Input)
		for _, rt := range harness.Runtimes() {
			for _, pw := range harness.Powers() {
				t0 := time.Now()
				if _, err := harness.Measure(p.Net, p.Model, rt, pw, input); err != nil {
					fail(err)
				}
				rep.Fig9.Cells = append(rep.Fig9.Cells, cellTime{
					Net: p.Net, Runtime: rt.Name(), Power: pw.Name,
					NsPerOp: time.Since(t0).Nanoseconds(),
				})
			}
		}
	}

	// Tape vs interpreter on the full matrix: identical cells, less time.
	// The interpreted pass is re-timed here (rather than reusing the RunAll
	// figure) so both sides run the identical Measure loop. The two
	// executors alternate within each round and the minimum over rounds is
	// reported: paired min-of-K discards scheduler and thermal noise that an
	// averaged back-to-back comparison folds into the ratio.
	matrixOnce := func(rts []core.Runtime) (time.Duration, []harness.RunResult) {
		var results []harness.RunResult
		start := time.Now()
		for _, p := range prepped {
			input := p.Model.QuantizeInput(p.Input)
			for _, rt := range rts {
				for _, pw := range harness.Powers() {
					res, err := harness.Measure(p.Net, p.Model, rt, pw, input)
					if err != nil {
						fail(err)
					}
					results = append(results, res)
				}
			}
		}
		return time.Since(start), results
	}
	fmt.Fprintf(os.Stderr, "bench: Fig. 9 matrix interpreted vs tape, paired × %d...\n", *count)
	var minInterp, minTape time.Duration
	for i := 0; i < *count; i++ {
		dI, resI := matrixOnce(harness.Runtimes())
		dT, resT := matrixOnce(harness.TapeRuntimes())
		if !reflect.DeepEqual(resI, resT) {
			fail(fmt.Errorf("tape executors changed Fig. 9 results — bit-exactness broken"))
		}
		if i == 0 || dI < minInterp {
			minInterp = dI
		}
		if i == 0 || dT < minTape {
			minTape = dT
		}
	}
	rep.Tape.Fig9InterpNsPerOp = minInterp.Nanoseconds()
	rep.Tape.Fig9TapeNsPerOp = minTape.Nanoseconds()
	rep.Tape.Fig9Speedup = float64(minInterp) / float64(minTape)
	rep.Tape.Identical = true
	rep.Tape.Iterations = *count

	// Intermittence fuzz campaign, as CI runs it: every runtime plus the
	// two negative controls, WAR shadow armed. Measured twice at identical
	// sweep coverage — once with ForceScratch (the pre-fork path) and once
	// with snapshot-and-fork — so the speedup is apples-to-apples on this
	// machine, independent of the recorded PR3 reference value.
	qm, x := intermittest.TinyModel(*seed)
	rts := append(harness.Runtimes(),
		core.Runtime(checkpoint.Checkpoint{Interval: 8}), intermittest.Broken{})

	fmt.Fprintf(os.Stderr, "bench: intermittest campaign (from-scratch) × %d...\n", *count)
	scratchOpt := intermittest.Options{Seed: *seed, CheckWAR: true, ForceScratch: true}
	start = time.Now()
	for i := 0; i < *count; i++ {
		if _, err := intermittest.Campaign(qm, x, rts, scratchOpt); err != nil {
			fail(err)
		}
	}
	rep.Campaign.BeforeNsPerOp = time.Since(start).Nanoseconds() / int64(*count)

	fmt.Fprintf(os.Stderr, "bench: intermittest campaign (snapshot-and-fork) × %d...\n", *count)
	opt := intermittest.Options{Seed: *seed, CheckWAR: true}
	var last *intermittest.Report
	start = time.Now()
	for i := 0; i < *count; i++ {
		r, err := intermittest.Campaign(qm, x, rts, opt)
		if err != nil {
			fail(err)
		}
		last = r
	}
	rep.Campaign.AfterNsPerOp = time.Since(start).Nanoseconds() / int64(*count)
	rep.Campaign.Speedup = float64(rep.Campaign.BeforeNsPerOp) / float64(rep.Campaign.AfterNsPerOp)
	rep.Campaign.PR3NsPerOp = preForkCampaignNsPerOp
	rep.Campaign.Iterations = *count

	// The speedup only counts if the fast path kept the oracle's teeth:
	// the WAR-broken negative control must stay flagged at every boundary.
	for _, rr := range last.Runtimes {
		if rr.Runtime == "broken" && len(rr.WARBounds) != rr.Swept {
			fail(fmt.Errorf("broken flagged at %d of %d boundaries — fast path lost coverage",
				len(rr.WARBounds), rr.Swept))
		}
	}

	// Fleet engine throughput: the same campaign shape the fleet tests
	// sweep, timed at each worker count with a determinism cross-check
	// (summaries must be byte-identical across worker counts).
	const fleetDevices = 5000
	fleetModels := map[string]fleet.Model{
		"tiny": {Net: "tiny", QM: qm, Input: qm.QuantizeInput(x)}}
	fleetSpec := fleet.Spec{
		Devices:  fleetDevices,
		Seed:     *seed,
		Models:   []string{"tiny"},
		Runtimes: []string{"base", "tile-32", "sonic", "tails"},
		Powers: []fleet.PowerClass{
			{Name: "rf-100uF", SystemSpec: energy.SystemSpec{Kind: "const", CapFarads: 100e-6}},
			{Name: "stoch-100uF", SystemSpec: energy.SystemSpec{Kind: "stoch", CapFarads: 100e-6}},
			{Name: "cont", SystemSpec: energy.SystemSpec{Kind: "cont"}},
		},
	}
	rep.Fleet.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Fleet.Devices = fleetDevices
	rep.Fleet.Iterations = *count
	rep.Fleet.Deterministic = true
	workerCounts := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		workerCounts = append(workerCounts, g)
	}
	var baselineSummary []byte
	perWorkerNs := make(map[int]int64)
	for _, w := range workerCounts {
		fmt.Fprintf(os.Stderr, "bench: fleet campaign (%d devices, %d workers) × %d...\n",
			fleetDevices, w, *count)
		start = time.Now()
		var res *fleet.Result
		for i := 0; i < *count; i++ {
			var err error
			if res, err = fleet.Run(context.Background(), fleetSpec, fleetModels, w); err != nil {
				fail(err)
			}
		}
		ns := time.Since(start).Nanoseconds() / int64(*count)
		perWorkerNs[w] = ns
		rep.Fleet.Workers = append(rep.Fleet.Workers, fleetPoint{
			Workers: w, NsPerOp: ns,
			DevicesPerSec: float64(fleetDevices) / (float64(ns) / 1e9),
		})
		sum, err := json.Marshal(res.Agg.Summary())
		if err != nil {
			fail(err)
		}
		if baselineSummary == nil {
			baselineSummary = sum
		} else if string(sum) != string(baselineSummary) {
			fail(fmt.Errorf("fleet aggregates at %d workers differ from the 1-worker baseline", w))
		}
	}
	// Tape vs interpreter on fleet throughput at one worker — the purest
	// per-device simulation cost. The sweep runs the real evaluation
	// networks (the tiny fleet above is all fixed per-device overhead,
	// identical in both executors). The tape campaign must reproduce the
	// interpreted summary byte-for-byte (Spec.Tape is an executor choice,
	// not campaign identity) and sweep strictly more devices per second.
	// Paired alternating min-of-K again: each round runs interpreted then
	// tape under the same machine conditions, and the minima are compared.
	const realFleetDevices = 600
	realModels := make(map[string]fleet.Model, len(prepped))
	var realNets []string
	for _, p := range prepped {
		realModels[p.Net] = fleet.Model{Net: p.Net, QM: p.Model, Input: p.Model.QuantizeInput(p.Input)}
		realNets = append(realNets, p.Net)
	}
	realSpec := fleet.Spec{
		Devices:  realFleetDevices,
		Seed:     *seed,
		Models:   realNets,
		Runtimes: []string{"tile-32", "sonic", "tails"},
		Powers: []fleet.PowerClass{
			{Name: "rf-100uF", SystemSpec: energy.SystemSpec{Kind: "const", CapFarads: 100e-6}},
			{Name: "cont", SystemSpec: energy.SystemSpec{Kind: "cont"}},
		},
	}
	tapeSpec := realSpec
	tapeSpec.Tape = true
	fmt.Fprintf(os.Stderr, "bench: fleet campaign interpreted vs tape (%d real-network devices, 1 worker), paired × %d...\n",
		realFleetDevices, *count)
	var realSummary []byte
	realMins, _ := pairedFleetMin(*count, 1, realModels, &realSummary, realSpec, tapeSpec)
	minFleetInterp, minFleetTape := realMins[0], realMins[1]
	rep.Tape.FleetDevices = realFleetDevices
	rep.Tape.FleetNets = realNets
	rep.Tape.FleetInterpDevPerSec = float64(realFleetDevices) / minFleetInterp.Seconds()
	rep.Tape.FleetTapeDevPerSec = float64(realFleetDevices) / minFleetTape.Seconds()
	rep.Tape.FleetSpeedup = float64(minFleetInterp) / float64(minFleetTape)

	// Fused kernels vs scalar at fixed executor choice (tape on both
	// sides): the Fig. 9 matrix through Measure vs MeasureScalar, and the
	// real-network fleet with Spec.NoFuse flipped. Paired alternating
	// min-of-K, bit-identical results required, as in the Tape section.
	matrixMeasured := func(rts []core.Runtime, scalar bool) (time.Duration, []harness.RunResult) {
		mfn := harness.Measure
		if scalar {
			mfn = harness.MeasureScalar
		}
		var results []harness.RunResult
		start := time.Now()
		for _, p := range prepped {
			input := p.Model.QuantizeInput(p.Input)
			for _, rt := range rts {
				for _, pw := range harness.Powers() {
					res, err := mfn(p.Net, p.Model, rt, pw, input)
					if err != nil {
						fail(err)
					}
					results = append(results, res)
				}
			}
		}
		return time.Since(start), results
	}
	fmt.Fprintf(os.Stderr, "bench: Fig. 9 matrix fused vs scalar (tape executors), paired × %d...\n", *count)
	var minFig9Fused, minFig9Scalar time.Duration
	for i := 0; i < *count; i++ {
		dS, resS := matrixMeasured(harness.TapeRuntimes(), true)
		dF, resF := matrixMeasured(harness.TapeRuntimes(), false)
		if !reflect.DeepEqual(resS, resF) {
			fail(fmt.Errorf("fused kernels changed Fig. 9 results — bit-exactness broken"))
		}
		if i == 0 || dS < minFig9Scalar {
			minFig9Scalar = dS
		}
		if i == 0 || dF < minFig9Fused {
			minFig9Fused = dF
		}
	}
	rep.Kernels.Fig9ScalarNsPerOp = minFig9Scalar.Nanoseconds()
	rep.Kernels.Fig9FusedNsPerOp = minFig9Fused.Nanoseconds()
	rep.Kernels.Fig9Speedup = float64(minFig9Scalar) / float64(minFig9Fused)

	scalarTapeSpec := tapeSpec
	scalarTapeSpec.NoFuse = true
	fmt.Fprintf(os.Stderr, "bench: fleet campaign fused vs scalar (%d real-network devices, 1 worker), paired × %d...\n",
		realFleetDevices, *count)
	kernelMins, _ := pairedFleetMin(*count, 1, realModels, &realSummary, scalarTapeSpec, tapeSpec)
	minFleetScalar, minFleetFused := kernelMins[0], kernelMins[1]
	rep.Kernels.FleetDevices = realFleetDevices
	rep.Kernels.FleetNets = realNets
	rep.Kernels.FleetScalarDevPerSec = float64(realFleetDevices) / minFleetScalar.Seconds()
	rep.Kernels.FleetFusedDevPerSec = float64(realFleetDevices) / minFleetFused.Seconds()
	rep.Kernels.FleetSpeedup = float64(minFleetScalar) / float64(minFleetFused)
	rep.Kernels.PR7FleetDevPerSec = pr7FleetTapeDevPerSec
	rep.Kernels.Identical = true
	rep.Kernels.Iterations = *count

	// Fused tape fleet at 1 and 4 workers: the throughput a campaign
	// actually sees. The 1-worker point reuses the paired minimum above;
	// 4 workers is measured here (byte-identical summary again required).
	rep.Kernels.FleetWorkers = append(rep.Kernels.FleetWorkers, fleetPoint{
		Workers: 1, NsPerOp: minFleetFused.Nanoseconds(),
		DevicesPerSec: rep.Kernels.FleetFusedDevPerSec,
	})
	fmt.Fprintf(os.Stderr, "bench: fleet campaign fused (%d real-network devices, 4 workers) × %d...\n",
		realFleetDevices, *count)
	fused4Mins, _ := pairedFleetMin(*count, 4, realModels, &realSummary, tapeSpec)
	minFleetFused4 := fused4Mins[0]
	rep.Kernels.FleetWorkers = append(rep.Kernels.FleetWorkers, fleetPoint{
		Workers: 4, NsPerOp: minFleetFused4.Nanoseconds(),
		DevicesPerSec: float64(realFleetDevices) / minFleetFused4.Seconds(),
	})

	// Pooled COW provisioning vs per-device fresh deploys, fused tape on
	// both sides. Paired alternating min-of-K: each round runs the fresh
	// fleet then the pooled fleet under the same machine conditions.
	freshTapeSpec := tapeSpec
	freshTapeSpec.Fresh = true
	fmt.Fprintf(os.Stderr, "bench: fleet campaign fresh vs pooled provisioning (%d real-network devices, 1 worker), paired × %d...\n",
		realFleetDevices, *count)
	provMins, provBest := pairedFleetMin(*count, 1, realModels, &realSummary, freshTapeSpec, tapeSpec)
	minFleetFresh, minFleetPooled := provMins[0], provMins[1]
	if provBest[0].Provision.FreshDeploys != realFleetDevices || provBest[1].Provision.Restores != realFleetDevices {
		fail(fmt.Errorf("provisioning counters off: fresh %+v pooled %+v",
			provBest[0].Provision, provBest[1].Provision))
	}
	pooledProv := provBest[1].Provision
	rep.Provision.FleetDevices = realFleetDevices
	rep.Provision.FleetNets = realNets
	rep.Provision.FreshDevPerSec = float64(realFleetDevices) / minFleetFresh.Seconds()
	rep.Provision.PooledDevPerSec = float64(realFleetDevices) / minFleetPooled.Seconds()
	rep.Provision.FleetSpeedup = float64(minFleetFresh) / float64(minFleetPooled)
	rep.Provision.Restores = pooledProv.Restores
	rep.Provision.PagesCopied = pooledProv.PagesCopied
	rep.Provision.PagesClean = pooledProv.PagesClean
	rep.Provision.PagesSkipped = pooledProv.PagesSkipped
	rep.Provision.PR8FleetDevPerSec = pr8FleetTapeDevPerSec
	rep.Provision.Identical = true
	rep.Provision.Iterations = *count

	// The provisioning path in isolation on the same networks: making one
	// device simulation-ready, with inference out of the picture. The
	// fresh arm is exactly what fleet.simulate pays per device without
	// pooling (a full mcu.New + core.Deploy); the pooled arm is the
	// steady-state pool path (restore-in-place into a warm slot). Paired
	// alternating min-of-K again.
	const provDevices = 300
	fmt.Fprintf(os.Stderr, "bench: provisioning path fresh vs pooled (%d devices × %d real networks), paired × %d...\n",
		provDevices, len(realNets), *count)
	slots := make(map[string]*fleet.Slot, len(realNets))
	for _, net := range realNets {
		proto, err := fleet.NewPrototype(realModels[net])
		if err != nil {
			fail(err)
		}
		sl, err := fleet.NewSlot(proto)
		if err != nil {
			fail(err)
		}
		slots[net] = sl
	}
	var minProvFresh, minProvPooled time.Duration
	var provStats fleet.ProvisionStats
	for i := 0; i < *count; i++ {
		t0 := time.Now()
		for _, net := range realNets {
			m := realModels[net]
			for j := 0; j < provDevices; j++ {
				dev := mcu.New(energy.Continuous{})
				if _, err := core.Deploy(dev, m.QM); err != nil {
					fail(err)
				}
			}
		}
		dF := time.Since(t0)
		t0 = time.Now()
		for _, net := range realNets {
			sl := slots[net]
			for j := 0; j < provDevices; j++ {
				if err := sl.Provision(energy.Continuous{}, false, &provStats); err != nil {
					fail(err)
				}
			}
		}
		dP := time.Since(t0)
		if i == 0 || dF < minProvFresh {
			minProvFresh = dF
		}
		if i == 0 || dP < minProvPooled {
			minProvPooled = dP
		}
	}
	nProv := provDevices * len(realNets)
	rep.Provision.ProvDevices = nProv
	rep.Provision.ProvFreshDevPerSec = float64(nProv) / minProvFresh.Seconds()
	rep.Provision.ProvPooledDevPerSec = float64(nProv) / minProvPooled.Seconds()
	rep.Provision.ProvSpeedup = float64(minProvFresh) / float64(minProvPooled)

	// Sparse row-walk section. The fleet side restates the tape sweep's
	// paired minimum (measured above, byte-identical summaries enforced)
	// against BENCH_PR9's recorded figure. The layer pair isolates the
	// row walk: SONIC interpreted (per-nonzero binary row search) versus
	// SONIC tape (compiled row-span trains) on a model that is almost
	// entirely one big SparseDense layer, at continuous power, with reps
	// batched per timed side to stay well above timer resolution.
	qmSparse, xSparse := sparseHeavyModel(*seed)
	qs := &qmSparse.Layers[0]
	inputSparse := qmSparse.QuantizeInput(xSparse)
	contPow := harness.Powers()[0]
	const sparseReps = 50
	fmt.Fprintf(os.Stderr, "bench: sparse layer interpreted vs tape (SONIC, %dx%d, %d nonzeros), paired × %d...\n",
		qs.Out, qs.In, int(qs.RowPtr[qs.Out]), *count)
	sparseOnce := func(rt core.Runtime) (time.Duration, []harness.RunResult) {
		results := make([]harness.RunResult, 0, sparseReps)
		start := time.Now()
		for r := 0; r < sparseReps; r++ {
			res, err := harness.Measure("sparse-heavy", qmSparse, rt, contPow, inputSparse)
			if err != nil {
				fail(err)
			}
			results = append(results, res)
		}
		return time.Since(start), results
	}
	var minLayerInterp, minLayerTape time.Duration
	for i := 0; i < *count; i++ {
		dI, resI := sparseOnce(sonic.SONIC{})
		dT, resT := sparseOnce(sonic.SONIC{Tape: true})
		if !reflect.DeepEqual(resI, resT) {
			fail(fmt.Errorf("tape row-span trains changed sparse-heavy results — bit-exactness broken"))
		}
		if i == 0 || dI < minLayerInterp {
			minLayerInterp = dI
		}
		if i == 0 || dT < minLayerTape {
			minLayerTape = dT
		}
	}
	// RunResult equality covers stats and the prediction; pin the raw
	// logits too, once per executor.
	logitsOf := func(rt core.Runtime) []fixed.Q15 {
		dev := mcu.New(energy.Continuous{})
		img, err := core.Deploy(dev, qmSparse)
		if err != nil {
			fail(err)
		}
		lg, err := rt.Infer(img, inputSparse)
		if err != nil {
			fail(err)
		}
		return lg
	}
	if !reflect.DeepEqual(logitsOf(sonic.SONIC{}), logitsOf(sonic.SONIC{Tape: true})) {
		fail(fmt.Errorf("tape row-span trains changed sparse-heavy logits — bit-exactness broken"))
	}
	rep.Sparse.FleetDevices = realFleetDevices
	rep.Sparse.FleetTapeDevPerSec = rep.Tape.FleetTapeDevPerSec
	rep.Sparse.PR9FleetDevPerSec = pr9FleetTapeDevPerSec
	rep.Sparse.FleetGain = rep.Tape.FleetTapeDevPerSec / pr9FleetTapeDevPerSec
	rep.Sparse.LayerRows = qs.Out
	rep.Sparse.LayerCols = qs.In
	rep.Sparse.LayerNonzeros = int(qs.RowPtr[qs.Out])
	rep.Sparse.LayerInterpNsPerOp = minLayerInterp.Nanoseconds() / sparseReps
	rep.Sparse.LayerTapeNsPerOp = minLayerTape.Nanoseconds() / sparseReps
	rep.Sparse.LayerSpeedup = float64(minLayerInterp) / float64(minLayerTape)
	rep.Sparse.Identical = true
	rep.Sparse.Iterations = *count

	// The tape path exists to be faster; a regression on either headline
	// metric fails the bench outright.
	if rep.Tape.Fig9Speedup <= 1.0 {
		fail(fmt.Errorf("tape Fig. 9 matrix is not faster than interpreted (%.2fx)", rep.Tape.Fig9Speedup))
	}
	if rep.Tape.FleetSpeedup <= 1.0 {
		fail(fmt.Errorf("tape fleet sweep is not faster than interpreted (%.2fx)", rep.Tape.FleetSpeedup))
	}
	if rep.Kernels.FleetSpeedup <= 1.0 {
		fail(fmt.Errorf("fused fleet sweep is not faster than scalar (%.2fx)", rep.Kernels.FleetSpeedup))
	}
	// The fused-kernel PR's headline: the tape fleet sweep (now fused by
	// default) must at least double the throughput BENCH_PR7 recorded.
	if rep.Tape.FleetTapeDevPerSec < 2*pr7FleetTapeDevPerSec {
		fail(fmt.Errorf("tape fleet sweep at %.0f devices/sec, want >= 2x PR7's %.0f",
			rep.Tape.FleetTapeDevPerSec, pr7FleetTapeDevPerSec))
	}
	// The provisioning PR's headline: on the real networks, provisioning a
	// pooled device must beat the fresh mcu.New + core.Deploy path by
	// >= 1.3x devices/sec on identical fleet results (byte-equality
	// enforced above). Measured around two orders of magnitude; the bar
	// is deliberately far below it so noise cannot flake the build.
	if rep.Provision.ProvSpeedup < 1.3 {
		fail(fmt.Errorf("pooled provisioning path at %.2fx over fresh deploys, want >= 1.3x",
			rep.Provision.ProvSpeedup))
	}
	// End-to-end, pooling must never cost fleet throughput. The sweep is
	// inference-bound (the isolated ratio shrinks through Amdahl to a
	// ~1.1x end-to-end gain), so guard against regression at the noise
	// floor rather than asserting the gain itself.
	if rep.Provision.FleetSpeedup < 0.9 {
		fail(fmt.Errorf("pooled fleet at %.2fx of fresh-deploy throughput: pooling regressed the sweep",
			rep.Provision.FleetSpeedup))
	}
	if rep.Provision.PagesSkipped == 0 {
		fail(fmt.Errorf("pooled restores skipped no pages: dirty-region tracking inert"))
	}
	// The sparse PR's headline: the tape fleet sweep must clear 1.3x the
	// throughput BENCH_PR9 recorded, on byte-identical summaries, and the
	// compiled row-span trains must beat the interpreted row walk on the
	// sparse-heavy layer.
	if rep.Sparse.FleetGain < 1.3 {
		fail(fmt.Errorf("tape fleet sweep at %.0f devices/sec is %.2fx of PR9's %.0f, want >= 1.3x",
			rep.Sparse.FleetTapeDevPerSec, rep.Sparse.FleetGain, pr9FleetTapeDevPerSec))
	}
	if rep.Sparse.LayerSpeedup <= 1.0 {
		fail(fmt.Errorf("sparse-layer tape pass is not faster than interpreted (%.2fx)",
			rep.Sparse.LayerSpeedup))
	}

	// Scaling is only meaningful with real parallel hardware: on >=4 CPUs,
	// 4 workers must deliver at least half of linear speedup over 1.
	if runtime.GOMAXPROCS(0) >= 4 {
		rep.Fleet.ScalingAt4 = float64(perWorkerNs[1]) / float64(perWorkerNs[4]) / 4
		if rep.Fleet.ScalingAt4 < 0.5 {
			fail(fmt.Errorf("fleet scaling at 4 workers is %.2fx of linear, want >= 0.5x",
				rep.Fleet.ScalingAt4))
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("prepare: serial %.3fs parallel %.3fs (%.2fx, GOMAXPROCS=%d) warm %.3fs (%.2fx, 0 epochs)\n",
		float64(rep.Prepare.SerialNsPerOp)/1e9,
		float64(rep.Prepare.ParallelNsPerOp)/1e9, rep.Prepare.ParallelSpeedup,
		rep.Prepare.GOMAXPROCS,
		float64(rep.Prepare.WarmNsPerOp)/1e9, rep.Prepare.WarmSpeedup)
	fmt.Printf("fig9: %.3fs/op (%.2fx over pre-bulk %.3fs)  campaign: %.3fs/op (%.2fx over from-scratch %.3fs)\n",
		float64(rep.Fig9.AfterNsPerOp)/1e9, rep.Fig9.Speedup,
		float64(preBulkFig9NsPerOp)/1e9,
		float64(rep.Campaign.AfterNsPerOp)/1e9, rep.Campaign.Speedup,
		float64(rep.Campaign.BeforeNsPerOp)/1e9)
	for _, p := range rep.Fleet.Workers {
		fmt.Printf("fleet: %d devices @ %d workers: %.0f devices/sec\n",
			rep.Fleet.Devices, p.Workers, p.DevicesPerSec)
	}
	fmt.Printf("tape: fig9 %.3fs -> %.3fs (%.2fx)  fleet %.0f -> %.0f devices/sec (%.2fx)  identical=%v\n",
		float64(rep.Tape.Fig9InterpNsPerOp)/1e9, float64(rep.Tape.Fig9TapeNsPerOp)/1e9,
		rep.Tape.Fig9Speedup,
		rep.Tape.FleetInterpDevPerSec, rep.Tape.FleetTapeDevPerSec, rep.Tape.FleetSpeedup,
		rep.Tape.Identical)
	fmt.Printf("kernels: fig9 %.3fs -> %.3fs (%.2fx)  fleet %.0f -> %.0f devices/sec (%.2fx)  identical=%v\n",
		float64(rep.Kernels.Fig9ScalarNsPerOp)/1e9, float64(rep.Kernels.Fig9FusedNsPerOp)/1e9,
		rep.Kernels.Fig9Speedup,
		rep.Kernels.FleetScalarDevPerSec, rep.Kernels.FleetFusedDevPerSec, rep.Kernels.FleetSpeedup,
		rep.Kernels.Identical)
	for _, p := range rep.Kernels.FleetWorkers {
		fmt.Printf("kernels: fused fleet %d devices @ %d workers: %.0f devices/sec\n",
			rep.Kernels.FleetDevices, p.Workers, p.DevicesPerSec)
	}
	fmt.Printf("provision: path %.0f -> %.0f devices/sec (%.1fx)  fleet %.0f -> %.0f devices/sec (%.2fx, PR8 recorded %.0f)  pages copied/clean/skipped %d/%d/%d  identical=%v\n",
		rep.Provision.ProvFreshDevPerSec, rep.Provision.ProvPooledDevPerSec, rep.Provision.ProvSpeedup,
		rep.Provision.FreshDevPerSec, rep.Provision.PooledDevPerSec, rep.Provision.FleetSpeedup,
		rep.Provision.PR8FleetDevPerSec,
		rep.Provision.PagesCopied, rep.Provision.PagesClean, rep.Provision.PagesSkipped,
		rep.Provision.Identical)
	fmt.Printf("fleet: deterministic across worker counts: %v  -> %s\n",
		rep.Fleet.Deterministic, *out)
}

// pairedFleetMin is the shared paired alternating min-of-K harness for
// fleet A/Bs: each round times one sweep per spec, in order, so every
// spec sees the same machine conditions within a round, and the minimum
// over rounds discards scheduler and thermal noise that an averaged
// back-to-back comparison folds into the ratio. Every sweep's aggregate
// summary must be byte-identical to *baseline (seeded from the first
// sweep when nil) — a speedup can never come from changed results.
// Returns each spec's minimum duration and the fleet result from its
// fastest round.
func pairedFleetMin(count, workers int, models map[string]fleet.Model, baseline *[]byte, specs ...fleet.Spec) ([]time.Duration, []*fleet.Result) {
	mins := make([]time.Duration, len(specs))
	best := make([]*fleet.Result, len(specs))
	for i := 0; i < count; i++ {
		for j := range specs {
			t0 := time.Now()
			res, err := fleet.Run(context.Background(), specs[j], models, workers)
			if err != nil {
				fail(err)
			}
			d := time.Since(t0)
			sum, err := json.Marshal(res.Agg.Summary())
			if err != nil {
				fail(err)
			}
			if *baseline == nil {
				*baseline = sum
			} else if string(sum) != string(*baseline) {
				fail(fmt.Errorf("fleet summary diverged from the baseline — bit-exactness broken"))
			}
			if i == 0 || d < mins[j] {
				mins[j] = d
				best[j] = res
			}
		}
	}
	return mins, best
}

// sparseHeavyModel builds the sparse-layer A/B's synthetic workload: a
// 512-wide SparseDense layer at ~8% average density with naturally varied
// row lengths — empty rows through double-average rows, as GENESIS-pruned
// layers produce — followed by a small dense head, so the charged work is
// dominated by the CSR row walk under test. Kept weights get solid
// magnitudes so quantization retains the crafted structure.
func sparseHeavyModel(seed uint64) (*dnn.QuantModel, []float64) {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	const in, out = 512, 512
	avg := in * 8 / 100
	d := dnn.NewDense(rng, out, in)
	wd := d.W.Data()
	for o := 0; o < out; o++ {
		for i := 0; i < in; i++ {
			wd[o*in+i] = (rng.Float64() - 0.5) * 0.01
		}
		for _, c := range rng.Perm(in)[:rng.IntN(2*avg+1)] {
			v := 0.3 + rng.Float64()*0.6
			if rng.IntN(2) == 0 {
				v = -v
			}
			wd[o*in+c] = v
		}
	}
	n := dnn.NewNetwork("sparse-heavy", dnn.Shape{1, 1, in})
	n.Add(d, dnn.NewReLU(), dnn.NewDense(rng, 4, out))
	n.Layers[0] = dnn.NewSparseDense(d, 0.1)
	x := make([]float64, in)
	for i := range x {
		x[i] = rng.Float64()*1.6 - 0.8
	}
	qm, err := dnn.Quantize(n, [][]float64{x})
	if err != nil {
		fail(fmt.Errorf("sparse-heavy model does not quantize: %w", err))
	}
	if qm.Layers[0].Kind != dnn.QSparseDense {
		fail(fmt.Errorf("sparse-heavy layer did not stay sparse"))
	}
	return qm, x
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	profiler.Stop()
	os.Exit(1)
}
