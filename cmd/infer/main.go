// Command infer deploys a quantized model onto the simulated device and
// runs inference under a chosen runtime and power system, reporting the
// classification, timing, energy, and reboot statistics.
//
// Usage:
//
//	infer -model har.qmodel -runtime sonic -power 100uF -n 5
//
// If -model is omitted, a model is prepared on the fly with a quick
// GENESIS run for -net.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/trace"
)

func main() {
	var (
		modelPath = flag.String("model", "", "quantized model file (from cmd/genesis)")
		net       = flag.String("net", "har", "network/dataset if no -model given")
		rtName    = flag.String("runtime", "sonic", "base, tile-N, sonic, tails, ckpt-N")
		useTape   = flag.Bool("tape", false, "execute from the pre-decoded op tape (bit-exact with the interpreted walk, faster host simulation)")
		pwName    = flag.String("power", "100uF",
			"cont, 50mF, 1mF, 100uF, stoch-100uF, stoch-1mF, solar-100uF")
		n           = flag.Int("n", 5, "number of test samples to classify")
		seed        = flag.Uint64("seed", 2, "dataset seed for test samples")
		harvestSeed = flag.Uint64("harvest-seed", 1, "harvester RNG seed for the stochastic power systems")
		tracePath   = flag.String("trace", "", "write an execution trace here (.csv, else Chrome/Perfetto JSON)")
	)
	flag.Parse()

	if *tracePath != "" {
		// Fail on an unwritable path now, not after the simulation.
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		f.Close()
	}

	// Resolve names before any expensive model preparation: a typo in
	// -runtime or -power should fail in milliseconds with the parse
	// diagnostic, not after a GENESIS run.
	rt, err := fleet.RuntimeByNameTape(*rtName, *useTape)
	if err != nil {
		fail(err)
	}
	pw := powerByName(*pwName, *harvestSeed)
	if pw == nil {
		fail(fmt.Errorf("unknown power system %q", *pwName))
	}

	var qm *dnn.QuantModel
	if *modelPath != "" {
		var lerr error
		qm, lerr = dnn.LoadQuantFile(*modelPath)
		if lerr != nil {
			fail(lerr)
		}
		*net = qm.Name
	} else {
		fmt.Printf("no -model given; preparing %s with a quick GENESIS run...\n", *net)
		p, perr := harness.Prepare(*net, harness.PrepareOptions{Seed: 1, Quick: true})
		if perr != nil {
			fail(perr)
		}
		qm = p.Model
	}

	ds, err := dnn.DatasetFor(qm.Name, *seed, 1, *n)
	if err != nil {
		fail(err)
	}
	dev := mcu.New(pw())
	var buf *trace.Buffer
	if *tracePath != "" {
		buf = trace.NewBuffer(0)
		dev.SetTracer(buf)
	}
	img, err := core.Deploy(dev, qm)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s, model %s (%d MACs, %d weight bytes), runtime %s, power %s\n",
		dev, qm.Name, qm.MACs(), qm.WeightWords()*2, rt.Name(), *pwName)

	names := dataset.ClassNames(dsName(qm.Name))
	correct := 0
	for i, ex := range ds.Test {
		before := *dev.Stats()
		logits, err := rt.Infer(img, qm.QuantizeInput(ex.X))
		if err != nil {
			fmt.Printf("sample %d: %v\n", i, err)
			// Dump the trace anyway: failed runs are the interesting ones.
			dumpTrace(buf, *tracePath, dev)
			os.Exit(2)
		}
		st := dev.Stats()
		pred := core.Argmax(logits)
		mark := " "
		if pred == ex.Label {
			correct++
			mark = "*"
		}
		fmt.Printf("sample %d: predicted %-10s truth %-10s %s  (%.1f ms live, %d reboots, %.2f mJ)\n",
			i, className(names, pred), className(names, ex.Label), mark,
			(st.LiveSeconds(dev.Cost.ClockHz)-before.LiveSeconds(dev.Cost.ClockHz))*1e3,
			st.Reboots-before.Reboots,
			(st.EnergyNJ()-before.EnergyNJ())*1e-6)
	}
	fmt.Printf("accuracy %d/%d; totals: %.3f s live, %.3f s dead, %d reboots, %.2f mJ\n",
		correct, len(ds.Test),
		dev.Stats().LiveSeconds(dev.Cost.ClockHz), dev.Stats().DeadSeconds,
		dev.Stats().Reboots, dev.Stats().EnergyMJ())

	dumpTrace(buf, *tracePath, dev)
}

// dumpTrace exports the buffered trace and prints the wasted-work
// timeline; no-op when tracing is off.
func dumpTrace(buf *trace.Buffer, path string, dev *mcu.Device) {
	if buf == nil {
		return
	}
	dev.FlushTrace()
	if err := writeTrace(path, buf, dev); err != nil {
		fail(err)
	}
	fmt.Printf("\ntrace: %d events written to %s\n", buf.Len(), path)
	if err := trace.WriteTimeline(os.Stdout, buf.Analysis()); err != nil {
		fail(err)
	}
}

// writeTrace exports the trace by file extension: .csv rows, otherwise
// Chrome trace-event JSON for Perfetto (with a voltage counter track when
// the power system is capacitor-buffered).
func writeTrace(path string, buf *trace.Buffer, dev *mcu.Device) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return trace.WriteCSV(f, buf.Events(), dev.Cost.ClockHz)
	}
	opts := trace.ChromeOptions{ClockHz: dev.Cost.ClockHz}
	if ip, ok := dev.Power.(*energy.Intermittent); ok {
		c := ip.Cap
		opts.Capacitor = &c
	}
	return trace.WriteChrome(f, buf.Events(), opts)
}

func powerByName(name string, harvestSeed uint64) func() energy.System {
	for _, p := range append(harness.Powers(), harness.StochasticPowers(harvestSeed)...) {
		if p.Name == name {
			return p.Make
		}
	}
	return nil
}

// dsName maps model names to dataset names.
func dsName(model string) string {
	if model == "mnist" {
		return "digits"
	}
	return model
}

func className(names []string, c int) string {
	if c >= 0 && c < len(names) {
		return names[c]
	}
	return fmt.Sprintf("#%d", c)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "infer:", err)
	os.Exit(1)
}
