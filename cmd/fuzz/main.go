// Command fuzz runs the intermittence-correctness campaign: it sweeps
// brown-out placements across a small model's op boundaries under the
// crash-consistent runtimes, differentially checking logits against the
// continuous-power golden run and (with -war) arming the write-after-read
// shadow tracker. Clean runtimes exit 0; any consistency bug prints the
// minimal failing schedule and exits 1.
//
// Usage:
//
//	fuzz                       # deterministic campaign over every runtime
//	fuzz -war -seed 1          # campaign with the WAR detector armed (CI)
//	fuzz -runtime sonic -war -schedule 120,4000   # replay one schedule
//	fuzz -runtime broken -war -schedule 1300 -minimize
//
// The campaign includes two negative controls — the unprotected baseline
// and a deliberately WAR-broken SONIC variant — which must come back
// flagged; a clean negative control means the detector itself regressed
// and also exits 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fleet"
	"repro/internal/intermittest"
	"repro/internal/prof"
	"repro/internal/sonic"
	"repro/internal/tails"
)

// profiler serves the -cpuprofile/-memprofile flags; every exit path must
// flush it because os.Exit skips deferred calls.
var profiler = prof.RegisterFlags()

func main() {
	var (
		rtName   = flag.String("runtime", "all", "all, base, tile-8, tile-32, tile-128, sonic, tails, ckpt-8, broken")
		useTape  = flag.Bool("tape", false, "fuzz the pre-decoded op-tape executors instead of the interpreted walk")
		war      = flag.Bool("war", false, "arm the write-after-read shadow tracker")
		seed     = flag.Uint64("seed", 1, "model seed; also seeds boundary sampling above -limit")
		schedule = flag.String("schedule", "", "comma-separated op gaps: replay this brown-out schedule instead of sweeping")
		minimize = flag.Bool("minimize", false, "with -schedule: shrink a failing schedule before printing it")
		limit    = flag.Int("limit", 0, "max op count for exhaustive sweeps (0 = default)")
		maxB     = flag.Int("max", 0, "boundaries sampled above -limit (0 = default)")
		stride   = flag.Int("snap-stride", 0, "op stride of the golden snapshot train (0 = default)")
		scratch  = flag.Bool("force-scratch", false, "disable snapshot-and-fork: simulate every check from scratch")
	)
	flag.Parse()
	if err := profiler.Start(); err != nil {
		fail(err)
	}

	qm, x := intermittest.TinyModel(*seed)
	opt := intermittest.Options{
		Seed: *seed, CheckWAR: *war,
		ExhaustiveLimit: *limit, MaxBoundaries: *maxB,
		SnapStride: *stride, ForceScratch: *scratch,
	}

	rts := runtimesByName(*rtName, *useTape)
	if rts == nil {
		fail(fmt.Errorf("unknown runtime %q", *rtName))
	}

	code := 0
	if *schedule != "" {
		code = replay(qm, x, rts, *schedule, opt, *minimize)
	} else {
		code = campaign(qm, x, rts, opt)
	}
	profiler.Stop()
	os.Exit(code)
}

// replay runs one explicit brown-out schedule under each selected runtime.
func replay(qm *dnn.QuantModel, x []float64, rts []core.Runtime, schedule string, opt intermittest.Options, minimize bool) int {
	gaps, err := intermittest.ParseSchedule(schedule)
	if err != nil {
		fail(err)
	}
	failed := false
	for _, rt := range rts {
		c, err := intermittest.NewCheckerOpt(qm, x, rt, opt)
		if err != nil {
			fail(err)
		}
		res := c.Check(gaps)
		fmt.Println(res)
		if res.Failing() {
			failed = true
			if minimize {
				min := c.Minimize(gaps)
				fmt.Printf("  minimal failing schedule: [%s]\n", intermittest.FormatSchedule(min))
			}
		}
	}
	if failed {
		return 1
	}
	return 0
}

// campaign sweeps brown-out placements under every selected runtime and
// enforces the expected verdicts: protected runtimes must be clean, and
// the negative controls (base, broken) must be flagged.
func campaign(qm *dnn.QuantModel, x []float64, rts []core.Runtime, opt intermittest.Options) int {
	rep, err := intermittest.Campaign(qm, x, rts, opt)
	if err != nil {
		fail(err)
	}
	fmt.Print(rep)

	exit := 0
	for _, r := range rep.Runtimes {
		if negativeControl(r.Runtime) {
			if r.Clean() {
				fmt.Printf("\nFAIL %s: negative control came back clean — the detector regressed\n", r.Runtime)
				exit = 1
			}
			continue
		}
		if r.Clean() {
			continue
		}
		exit = 1
		fmt.Printf("\nFAIL %s: %s\n", r.Runtime, r.Summary())
		if gaps := firstFailing(qm, x, r, opt); gaps != nil {
			fmt.Printf("  reproduce: go run ./cmd/fuzz -runtime %s%s -schedule %s\n",
				r.Runtime, warFlag(opt.CheckWAR), intermittest.FormatSchedule(gaps))
		}
	}
	return exit
}

// firstFailing rebuilds a checker for the dirty runtime and minimizes its
// earliest failing boundary into a concrete schedule.
func firstFailing(qm *dnn.QuantModel, x []float64, r *intermittest.RuntimeReport, opt intermittest.Options) []int {
	b := -1
	if len(r.Mismatches) > 0 {
		b = r.Mismatches[0].Boundary
	}
	if len(r.DNC) > 0 && (b < 0 || r.DNC[0] < b) {
		b = r.DNC[0]
	}
	if len(r.WARBounds) > 0 && (b < 0 || r.WARBounds[0] < b) {
		b = r.WARBounds[0]
	}
	if b < 0 {
		return nil
	}
	c, err := intermittest.NewCheckerOpt(qm, x, runtimeByName(r.Runtime, false), opt)
	if err != nil {
		return []int{b}
	}
	return c.Minimize([]int{b})
}

func warFlag(on bool) string {
	if on {
		return " -war"
	}
	return ""
}

// negativeControl reports whether the runtime is intentionally unsafe.
func negativeControl(name string) bool { return name == "base" || name == "broken" }

func runtimesByName(name string, tape bool) []core.Runtime {
	if name == "all" {
		return []core.Runtime{
			baseline.Base{Tape: tape},
			baseline.Tile{TileSize: 8, Tape: tape},
			baseline.Tile{TileSize: 32, Tape: tape},
			baseline.Tile{TileSize: 128, Tape: tape},
			sonic.SONIC{Tape: tape},
			tails.TAILS{Tape: tape},
			checkpoint.Checkpoint{Interval: 8, Tape: tape},
			intermittest.Broken{},
		}
	}
	if rt := runtimeByName(name, tape); rt != nil {
		return []core.Runtime{rt}
	}
	return nil
}

// runtimeByName resolves fuzz targets: the fleet vocabulary plus the
// WAR-broken negative control, which has no tape variant.
func runtimeByName(name string, tape bool) core.Runtime {
	if name == "broken" {
		return intermittest.Broken{}
	}
	rt, err := fleet.RuntimeByNameTape(name, tape)
	if err != nil {
		return nil
	}
	return rt
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fuzz:", err)
	profiler.Stop()
	os.Exit(1)
}
