// Command train trains one of the reference networks (mnist, har, okg) on
// its synthetic dataset and optionally saves the trained float network.
//
// Usage:
//
//	train -net har -epochs 4 -train 1200 -test 300 -out har.net
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dnn"
)

func main() {
	var (
		net    = flag.String("net", "har", "network/dataset: mnist, har, okg")
		epochs = flag.Int("epochs", 4, "training epochs")
		trainN = flag.Int("train", 1200, "training samples")
		testN  = flag.Int("test", 300, "test samples")
		seed   = flag.Uint64("seed", 1, "rng seed")
		out    = flag.String("out", "", "path to save the trained network (gob)")
	)
	flag.Parse()

	ds, err := dnn.DatasetFor(*net, *seed, *trainN, *testN)
	if err != nil {
		fail(err)
	}
	n, err := dnn.NetworkFor(*net, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Println(ds)
	fmt.Print(n.Summary())

	cfg := dnn.DefaultTrainConfig()
	cfg.Epochs = *epochs
	cfg.Seed = *seed
	cfg.Verbose = true
	fmt.Printf("training for %d epochs...\n", *epochs)
	loss := dnn.Train(n, ds, cfg)
	acc := dnn.Evaluate(n, ds.Test)
	fmt.Printf("final loss %.4f, test accuracy %.2f%%\n", loss, acc*100)

	if *out != "" {
		if err := n.SaveFile(*out); err != nil {
			fail(err)
		}
		fmt.Printf("saved to %s\n", *out)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "train:", err)
	os.Exit(1)
}
