// Command genesis runs the GENESIS compression sweep (§5) for one network:
// it trains the base network, explores pruning/separation configurations,
// checks feasibility against the FRAM budget, scores each configuration
// with the IMpJ application model, and saves the chosen deployable model.
//
// Usage:
//
//	genesis -net mnist -quick -out mnist.qmodel
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/genesis"
	"repro/internal/harness"
)

func main() {
	var (
		net      = flag.String("net", "har", "network: mnist, har, okg")
		quick    = flag.Bool("quick", false, "small training budgets (fast demo)")
		budget   = flag.Int("budget", 40*1024, "FRAM weight budget in bytes (feasibility)")
		seed     = flag.Uint64("seed", 1, "rng seed")
		out      = flag.String("out", "", "path to save the chosen quantized model")
		csv      = flag.Bool("csv", false, "emit CSV instead of text tables")
		perLayer = flag.Bool("perlayer", false, "greedily refine the chosen config with per-layer moves")
		serial   = flag.Bool("serial", false, "evaluate configurations on a single goroutine")
		workers  = flag.Int("workers", 0, "config-evaluation worker bound (0 = GOMAXPROCS)")
	)
	flag.Parse()

	opts := genesis.DefaultOptions(*net)
	if *quick {
		opts.TrainSamples, opts.TestSamples = 360, 90
		opts.Epochs, opts.FineTuneEpochs = 2, 1
		opts.MaxSamplesPerEpoch = 240
		opts.PruneLevels = []float64{0.75, 0.9}
		opts.RankFracs = []float64{0.5}
	}
	opts.Seed = *seed
	opts.FRAMBudgetBytes = *budget
	opts.ForceSerial = *serial
	opts.Workers = *workers

	fmt.Printf("GENESIS sweep for %s (%d configurations)...\n", *net, len(opts.Configs()))
	var rep *genesis.Report
	var refined *genesis.PerLayerResult
	var err error
	if *perLayer {
		rep, refined, err = genesis.RunPerLayer(opts)
	} else {
		rep, err = genesis.Run(opts)
	}
	if err != nil {
		fail(err)
	}
	p := &harness.Prepared{Net: *net, Report: rep}
	if chosen := rep.ChosenResult(); chosen != nil {
		p.Model = chosen.Model
	}
	for _, tab := range []*harness.Table{harness.Fig4(p), harness.Fig5(p)} {
		if *csv {
			fmt.Print(tab.CSV())
		} else {
			fmt.Println(tab.Render())
		}
	}

	chosen := rep.ChosenResult()
	if chosen == nil {
		fail(fmt.Errorf("no feasible configuration under %d-byte budget", *budget))
	}
	fmt.Printf("chosen: %s — accuracy %.1f%%, %d MACs, %d bytes, Einfer %.2f mJ, IMpJ %.2f\n",
		chosen.Config.Name(), chosen.Accuracy*100, chosen.MACs,
		chosen.ParamBytes, chosen.EInferJ*1e3, chosen.IMpJ)
	save := chosen.Model
	if refined != nil {
		fmt.Printf("per-layer refinement: IMpJ %.2f -> %.2f via %v\n",
			chosen.IMpJ, refined.IMpJ, refined.Moves)
		if refined.Model != nil {
			save = refined.Model
		}
	}
	if *out != "" {
		if err := save.SaveFile(*out); err != nil {
			fail(err)
		}
		fmt.Printf("saved deployable model to %s\n", *out)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "genesis:", err)
	os.Exit(1)
}
