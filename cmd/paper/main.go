// Command paper regenerates the paper's evaluation: every table and figure
// plus the §9.1 headline claims, printed as text tables (or CSV).
//
// Usage:
//
//	paper -all                 # everything (full GENESIS budgets; slow)
//	paper -all -quick          # everything with small budgets (~a minute)
//	paper -fig 9 -quick        # just Fig. 9
//	paper -table 2 -quick      # just Table 2
//	paper -claims -quick       # just the headline ratios
//	paper -csv ...             # CSV output
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dnn"
	"repro/internal/harness"
	"repro/internal/prof"
)

// profiler serves the -cpuprofile/-memprofile flags; fail() must flush it
// because os.Exit skips deferred calls.
var profiler = prof.RegisterFlags()

func main() {
	var (
		fig    = flag.Int("fig", 0, "regenerate one figure (1,2,4,5,6,9,10,11,12)")
		table  = flag.Int("table", 0, "regenerate one table (1,2)")
		claims = flag.Bool("claims", false, "print the headline-claims summary")
		all    = flag.Bool("all", false, "regenerate everything")
		quick  = flag.Bool("quick", false, "small training budgets")
		csv    = flag.Bool("csv", false, "CSV output")
		outDir = flag.String("out", "", "also write each table as CSV into this directory")
		seed   = flag.Uint64("seed", 1, "rng seed")
		cache  = flag.String("cache", "", "report/model cache directory (warm runs skip training)")
		serial = flag.Bool("serial", false, "disable parallel preparation (single goroutine)")
	)
	flag.Parse()
	if err := profiler.Start(); err != nil {
		fail(err)
	}
	defer profiler.Stop()
	if !*all && *fig == 0 && *table == 0 && !*claims {
		flag.Usage()
		os.Exit(2)
	}

	emit := func(tabs ...*harness.Table) {
		for _, t := range tabs {
			if t == nil {
				continue
			}
			if *csv {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Println(t.Render())
			}
			if *outDir != "" {
				if err := writeCSV(*outDir, t); err != nil {
					fail(err)
				}
			}
		}
	}

	// Figures 1, 2, 6 and Table 1 need no trained models.
	if *all || *fig == 1 {
		emit(harness.Fig1(20))
	}
	if *all || *fig == 2 {
		emit(harness.Fig2(20))
	}
	if *all || *table == 1 {
		emit(harness.Table1())
	}
	if *all || *fig == 6 {
		emit(harness.Fig6(1000, 55))
	}

	needModels := *all || *claims || *table == 2 ||
		*fig == 4 || *fig == 5 || *fig == 9 || *fig == 10 || *fig == 11 || *fig == 12
	if !needModels {
		return
	}

	fmt.Fprintf(os.Stderr, "preparing models with GENESIS (quick=%v serial=%v cache=%q)...\n",
		*quick, *serial, *cache)
	prepared, err := harness.PrepareAll(harness.PrepareOptions{
		Seed: *seed, Quick: *quick, CacheDir: *cache, ForceSerial: *serial})
	if err != nil {
		fail(err)
	}
	if *cache != "" {
		for _, p := range prepared {
			state := "miss"
			if p.CacheHit {
				state = "hit"
			}
			fmt.Fprintf(os.Stderr, "genesis report cache %s for %s\n", state, p.Net)
		}
	}
	fmt.Fprintf(os.Stderr, "training epochs run: %d\n", dnn.EpochsRun())
	if *all || *table == 2 {
		emit(harness.Table2(prepared))
	}
	if *all || *fig == 4 {
		for _, p := range prepared {
			emit(harness.Fig4(p))
		}
	}
	if *all || *fig == 5 {
		for _, p := range prepared {
			emit(harness.Fig5(p))
		}
	}

	needEval := *all || *claims || *fig == 9 || *fig == 10 || *fig == 11 || *fig == 12
	if !needEval {
		return
	}
	fmt.Fprintln(os.Stderr, "measuring all runtimes on all power systems...")
	ev, err := harness.RunAll(prepared)
	if err != nil {
		fail(err)
	}
	if *all || *fig == 9 {
		emit(harness.Fig9(ev))
		emit(harness.Fig9Layers(ev))
	}
	if *all || *fig == 10 {
		emit(harness.Fig10(ev))
	}
	if *all || *fig == 11 {
		emit(harness.Fig11(ev))
	}
	if *all || *fig == 12 {
		emit(harness.Fig12(ev))
	}
	if *all || *claims {
		emit(harness.Claims(ev))
		for _, p := range prepared {
			tab, err := harness.Ablation(p)
			if err != nil {
				fail(err)
			}
			emit(tab)
			ext, err := harness.Extensions(p)
			if err != nil {
				fail(err)
			}
			emit(ext)
			svmTab, err := harness.SVMComparison(p, *seed)
			if err != nil {
				fail(err)
			}
			emit(svmTab)
		}
	}
}

// writeCSV stores a table as <dir>/<slug>.csv.
func writeCSV(dir string, t *harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		case r == ' ', r == '(', r == ')', r == ':':
			return '-'
		default:
			return -1
		}
	}, t.Title)
	slug = strings.Trim(strings.ReplaceAll(slug, "--", "-"), "-")
	return os.WriteFile(filepath.Join(dir, slug+".csv"), []byte(t.CSV()), 0o644)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	profiler.Stop()
	os.Exit(1)
}
