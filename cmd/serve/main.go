// Command serve exposes the fleet campaign engine as an HTTP/JSON
// service: POST a fleet spec to /jobs, poll /jobs/{id} for progress and
// streamed aggregates, DELETE to cancel, /healthz for liveness, /stats
// for counters (jobs, dedup hits, model-cache builds, and device
// provisioning work — pooled restores, page traffic, fresh deploys).
// Identical specs are deduplicated by content address and answered from
// the original job without re-simulation; prepared models are shared
// across jobs and carry deploy-once provisioning prototypes, so pooled
// campaign devices are restored in place instead of re-deployed.
// SIGINT/SIGTERM triggers a graceful drain: in-flight campaigns get the
// drain timeout to finish before being cancelled.
//
// Usage:
//
//	serve -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/jobs -d @spec.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/serve"
)

func main() {
	err := run(context.Background(), os.Args[1:], os.Stderr, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// run is the testable main: it serves until ctx is cancelled or a
// SIGINT/SIGTERM arrives, then drains. If ready is non-nil it receives
// the bound address once the listener is up.
func run(ctx context.Context, args []string, stderr io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		workers = fs.Int("workers", 0, "simulation workers per campaign (0 = GOMAXPROCS)")
		maxDev  = fs.Int("max-devices", serve.DefaultMaxDevices, "largest accepted fleet")
		seed    = fs.Uint64("seed", 1, "model preparation seed")
		quick   = fs.Bool("quick", false, "quick-mode GENESIS budgets for model preparation")
		cache   = fs.String("cache", "", "model/report cache directory (empty = no cache)")
		drain   = fs.Duration("drain", 30*time.Second, "graceful-drain timeout on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	models := serve.NewModelCache(harness.PrepareOptions{
		Seed: *seed, Quick: *quick, CacheDir: *cache})
	srv := serve.New(models, serve.Options{Workers: *workers, MaxDevices: *maxDev})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stderr, "serve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()

	select {
	case err := <-httpErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(stderr, "serve: draining (timeout %s)...\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then let queued/running jobs finish.
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "serve: drain deadline expired, in-flight jobs cancelled\n")
		return nil
	}
	fmt.Fprintf(stderr, "serve: drained cleanly\n")
	return nil
}
