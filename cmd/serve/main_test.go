package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/fleet"
)

// TestServeSIGTERMGracefulDrain boots the real server binary path
// (run()), submits a campaign over HTTP, delivers a real SIGTERM to the
// process, and requires a clean exit with the in-flight job finished —
// the end-to-end graceful-drain contract.
func TestServeSIGTERMGracefulDrain(t *testing.T) {
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(),
			[]string{"-addr", "127.0.0.1:0", "-quick", "-drain", "60s"},
			io.Discard, func(a string) { addrCh <- a })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never came up")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	spec := fleet.Spec{
		Devices:  2000,
		Seed:     1,
		Models:   []string{"tiny"},
		Runtimes: []string{"base", "sonic", "tails"},
		Powers: []fleet.PowerClass{
			{Name: "rf-100uF", SystemSpec: energy.SystemSpec{Kind: "const", CapFarads: 100e-6}},
		},
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, job.ID)
	}

	// Real signal, real handler: the run() loop catches it via
	// signal.NotifyContext and drains.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run() exited with %v after SIGTERM, want clean drain", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("server did not drain within 90s of SIGTERM")
	}

	// The listener is closed after a drain.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after drain")
	}
}

// TestServeRunBadFlags: flag errors surface instead of serving.
func TestServeRunBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-no-such-flag"}, io.Discard, nil)
	if err == nil {
		t.Fatal("bad flags did not error")
	}
}

// TestServeRunCtxCancel: cancelling the parent context also drains —
// the programmatic equivalent of SIGTERM.
func TestServeRunCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quick"},
			io.Discard, func(a string) { addrCh <- a })
	}()
	select {
	case <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("server never came up")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run() = %v on context cancel", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit on context cancel")
	}
}
