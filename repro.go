// Package repro is a full reimplementation, in pure Go, of "Intelligence
// Beyond the Edge: Inference on Intermittent Embedded Systems" (Gobieski,
// Lucia & Beckmann, ASPLOS 2019): the SONIC and TAILS intermittent DNN
// inference runtimes, the GENESIS network compression tool, the IMpJ
// application-performance model, and the entire substrate they need — an
// energy- and cycle-accurate model of an MSP430-class energy-harvesting
// device (FRAM/SRAM, capacitor-buffered power, LEA vector accelerator,
// DMA), an Alpaca-style task-based intermittent runtime as the baseline, a
// small DNN training library, and synthetic datasets standing in for
// MNIST, HAR, and keyword spotting.
//
// This package is the public facade. The typical flow mirrors Fig. 3 of
// the paper:
//
//	model, _ := repro.TrainAndCompress("har", repro.QuickOptions("har")) // GENESIS
//	dev := repro.NewDevice(repro.Intermittent100uF())                    // the MCU
//	img, _ := repro.Deploy(dev, model)                                   // flash it
//	logits, _ := repro.SONIC().Infer(img, model.QuantizeInput(sample))   // intermittence-safe inference
//	class := repro.Argmax(logits)
//
// Every inference implementation produces the continuous-power result
// under any power schedule (bit-exactly for the software runtimes), or
// reports that it cannot complete on the given power system — the naive
// baseline does exactly that.
package repro

import (
	"repro/internal/app"
	"repro/internal/baseline"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/genesis"
	"repro/internal/harness"
	"repro/internal/imodel"
	"repro/internal/mcu"
	"repro/internal/sonic"
	"repro/internal/tails"
)

// Re-exported types. The implementation lives in internal packages; these
// aliases are the supported public names.
type (
	// Device is the simulated intermittently-powered MCU.
	Device = mcu.Device
	// Stats is the device's time/energy/reboot accounting.
	Stats = mcu.Stats
	// PowerSystem supplies (possibly intermittent) energy to a device.
	PowerSystem = energy.System
	// Capacitor is an energy buffer defined by capacitance and thresholds.
	Capacitor = energy.Capacitor
	// QuantModel is a quantized, deployable network.
	QuantModel = dnn.QuantModel
	// Network is a float network under training.
	Network = dnn.Network
	// Image is a model deployed into device FRAM.
	Image = core.Image
	// Runtime is an inference implementation (Base, Tile, SONIC, TAILS).
	Runtime = core.Runtime
	// Q15 is the device's saturating 16-bit fixed-point type.
	Q15 = fixed.Q15
	// GenesisOptions configures a GENESIS compression sweep.
	GenesisOptions = genesis.Options
	// GenesisReport is the outcome of a GENESIS sweep.
	GenesisReport = genesis.Report
	// AppModel holds the IMpJ application-model parameters (Table 1).
	AppModel = imodel.Params
	// Table is a rendered experiment result.
	Table = harness.Table
	// Dataset is a synthetic labelled train/test split.
	Dataset = dataset.Dataset
	// Example is one labelled sample.
	Example = dataset.Example
	// Pipeline is a deployed sense-infer-communicate application (§3).
	Pipeline = app.Pipeline
	// PipelineConfig configures a Pipeline.
	PipelineConfig = app.Config
	// Tally is a Pipeline run's outcome.
	Tally = app.Tally
	// Event is one sensor reading with ground truth.
	Event = app.Event
	// EventSource produces the event stream for a Pipeline.
	EventSource = app.Source
)

// Runtimes.

// SONIC returns the paper's software-only intermittence-safe runtime (§6).
func SONIC() Runtime { return sonic.SONIC{} }

// TAILS returns the LEA/DMA-accelerated runtime (§7).
func TAILS() Runtime { return tails.TAILS{} }

// Base returns the unprotected baseline: fast, but unable to complete on
// power systems whose buffer is smaller than a whole inference.
func Base() Runtime { return baseline.Base{} }

// Tile returns an Alpaca-style task-tiled implementation with k loop
// iterations per task (the paper evaluates 8, 32, and 128).
func Tile(k int) Runtime { return baseline.Tile{TileSize: k} }

// Checkpointing returns a Mementos/DINO-style periodic-checkpointing
// implementation with k loop iterations between checkpoints — the other
// class of prior intermittence support the paper compares against (§2.1).
func Checkpointing(k int) Runtime { return checkpoint.Checkpoint{Interval: k} }

// Power systems.

// ContinuousPower returns mains-like power that never fails.
func ContinuousPower() PowerSystem { return energy.Continuous{} }

// IntermittentRF returns an RF-harvesting power system with the given
// capacitor bank (see Cap100uF, Cap1mF, Cap50mF).
func IntermittentRF(c Capacitor) PowerSystem {
	return energy.NewIntermittent(c, energy.ConstantHarvester{Watts: energy.DefaultRFWatts})
}

// Intermittent100uF returns the paper's smallest evaluated power system.
func Intermittent100uF() PowerSystem { return IntermittentRF(energy.Cap100uF) }

// The paper's capacitor banks.
var (
	Cap100uF = energy.Cap100uF
	Cap1mF   = energy.Cap1mF
	Cap50mF  = energy.Cap50mF
)

// Device and deployment.

// NewDevice returns a simulated MSP430FR5994-class device on the given
// power system.
func NewDevice(p PowerSystem) *Device { return mcu.New(p) }

// Deploy places a quantized model into the device's FRAM. It fails if the
// model does not fit — GENESIS's feasibility condition.
func Deploy(dev *Device, m *QuantModel) (*Image, error) { return core.Deploy(dev, m) }

// Argmax returns the index of the largest logit.
func Argmax(logits []Q15) int { return core.Argmax(logits) }

// Training and compression.

// Networks lists the three evaluation networks: "mnist", "har", "okg".
func Networks() []string { return harness.Networks() }

// NewDataset generates the synthetic dataset for a network name.
func NewDataset(name string, seed uint64, trainN, testN int) (*Dataset, error) {
	return dnn.DatasetFor(name, seed, trainN, testN)
}

// ClassNames returns human-readable class names for a dataset name
// ("digits", "har", "okg"), or nil.
func ClassNames(name string) []string { return dataset.ClassNames(name) }

// TrainNetwork trains the named reference network on its synthetic dataset
// and returns it with the dataset's measured test accuracy.
func TrainNetwork(name string, seed uint64, trainN, testN, epochs int) (*Network, float64, error) {
	ds, err := dnn.DatasetFor(name, seed, trainN, testN)
	if err != nil {
		return nil, 0, err
	}
	n, err := dnn.NetworkFor(name, seed)
	if err != nil {
		return nil, 0, err
	}
	cfg := dnn.DefaultTrainConfig()
	cfg.Epochs = epochs
	cfg.Seed = seed
	dnn.Train(n, ds, cfg)
	return n, dnn.Evaluate(n, ds.Test), nil
}

// DefaultGenesisOptions returns the standard sweep for a network.
func DefaultGenesisOptions(network string) GenesisOptions {
	return genesis.DefaultOptions(network)
}

// QuickOptions returns a small-budget sweep suitable for demos and tests.
func QuickOptions(network string) GenesisOptions {
	o := genesis.DefaultOptions(network)
	o.TrainSamples, o.TestSamples = 360, 90
	o.Epochs, o.FineTuneEpochs = 2, 1
	o.MaxSamplesPerEpoch = 240
	o.PruneLevels = []float64{0.75, 0.9}
	o.RankFracs = []float64{0.5}
	return o
}

// Genesis runs the full GENESIS sweep and returns its report.
func Genesis(opts GenesisOptions) (*GenesisReport, error) { return genesis.Run(opts) }

// GenesisPerLayer runs the grid sweep and then greedily refines the chosen
// configuration with per-layer pruning/separation moves, as the paper's
// per-layer parameter sweep does. It returns the grid report and the
// refined result.
func GenesisPerLayer(opts GenesisOptions) (*GenesisReport, *genesis.PerLayerResult, error) {
	return genesis.RunPerLayer(opts)
}

// TrainAndCompress runs GENESIS and returns the chosen deployable model.
func TrainAndCompress(network string, opts GenesisOptions) (*QuantModel, error) {
	opts.Network = network
	rep, err := genesis.Run(opts)
	if err != nil {
		return nil, err
	}
	chosen := rep.ChosenResult()
	if chosen == nil {
		return nil, errNoFeasible(network)
	}
	return chosen.Model, nil
}

// Application model (§3).

// NewPipeline deploys a model into an end-to-end sensing application: the
// device senses, infers locally, and communicates interesting results,
// all drawn from one harvested-energy ledger (§3).
func NewPipeline(dev *Device, m *QuantModel, cfg PipelineConfig) (*Pipeline, error) {
	return app.New(dev, m, cfg)
}

// WildlifeModel returns the wildlife-monitoring case-study parameters.
func WildlifeModel() AppModel { return imodel.WildlifeDefaults() }

// IMpJ evaluates Eq. 3: interesting messages per Joule with local
// inference.
func IMpJ(p AppModel) float64 { return imodel.Inference(p) }

// IMpJBaseline evaluates Eq. 1 (no local inference, send everything).
func IMpJBaseline(p AppModel) float64 { return imodel.Baseline(p) }

// IMpJIdeal evaluates Eq. 2 (oracle filtering).
func IMpJIdeal(p AppModel) float64 { return imodel.Ideal(p) }

// errNoFeasible is a tiny local error type to keep the facade stdlib-only.
type errNoFeasible string

func (e errNoFeasible) Error() string {
	return "repro: GENESIS found no feasible configuration for " + string(e)
}
